// Known-bad fixture: explicitly ordered atomic accesses that disagree with
// the fixture contract (contract.tsv allows only relaxed for `gauge_`, and
// has no row at all for `orphan_`) — phch_lint must report
// atomic-contract-order and atomic-contract-missing.
#pragma once

#include <atomic>

class bad_contract_mismatch {
 public:
  int read() const { return gauge_.load(std::memory_order_seq_cst); }
  void touch() { orphan_.store(1, std::memory_order_relaxed); }

 private:
  std::atomic<int> gauge_{0};
  std::atomic<int> orphan_{0};
};
