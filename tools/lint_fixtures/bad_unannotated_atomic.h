// Known-bad fixture: atomic accesses that rely on the implicit seq_cst
// default — phch_lint must report atomic-implicit-order for the load, the
// store, and the operator form.
#pragma once

#include <atomic>

class bad_unannotated_atomic {
 public:
  int get() const { return counter_.load(); }
  void set(int v) { counter_.store(v); }
  void bump() { hits_ += 1; }

 private:
  std::atomic<int> counter_{0};
  std::atomic<int> hits_{0};
};
