#!/usr/bin/env python3
"""Validate phch_monitor's Prometheus text exposition (stdlib only).

Usage:
    check_prom.py SCRAPE1 [SCRAPE2]

SCRAPE1/SCRAPE2 are files holding the body of /metrics (two scrapes of the
same monitor process, SCRAPE2 taken later). The checks:

  format    every line is a comment or `name[{labels}] value`; label values
            are properly quoted and escaped; at most one TYPE line per
            metric name; histogram buckets are cumulative with a +Inf
            bucket equal to the _count sample.
  ledger    probe-depth histogram population == find_ops + insert_ops +
            erase_ops, exactly, in each scrape (phch_monitor publishes the
            page at quiescent points, so striped sums are exact).
  monotone  with two scrapes: every *_total counter and every histogram
            _count/_sum/bucket is non-decreasing from SCRAPE1 to SCRAPE2,
            and the ledger ops strictly advanced (the workload loop ran).

Exit status 0 when all checks pass, 1 otherwise, listing every failure.
"""
import math
import re
import sys

NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")

failures = []


def fail(msg):
    failures.append(msg)
    print(f"check_prom: FAIL {msg}", file=sys.stderr)


def parse_value(text):
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    return float(text)  # raises on junk -> caught by caller


def parse_labels(text, where):
    """text is the {...} interior; returns dict or None on error."""
    labels = {}
    i = 0
    while i < len(text):
        m = NAME_RE.match(text, i)
        if not m:
            fail(f"{where}: bad label name in {text!r}")
            return None
        name = m.group(0)
        i = m.end()
        if i >= len(text) or text[i] != "=":
            fail(f"{where}: missing '=' after label {name}")
            return None
        i += 1
        if i >= len(text) or text[i] != '"':
            fail(f"{where}: unquoted value for label {name}")
            return None
        i += 1
        value = []
        while i < len(text) and text[i] != '"':
            if text[i] == "\\":
                if i + 1 >= len(text):
                    fail(f"{where}: dangling escape in label {name}")
                    return None
                esc = text[i + 1]
                if esc == "\\":
                    value.append("\\")
                elif esc == '"':
                    value.append('"')
                elif esc == "n":
                    value.append("\n")
                else:
                    fail(f"{where}: unknown escape \\{esc} in label {name}")
                    return None
                i += 2
            else:
                value.append(text[i])
                i += 1
        if i >= len(text):
            fail(f"{where}: unterminated value for label {name}")
            return None
        i += 1  # closing quote
        labels[name] = "".join(value)
        if i < len(text):
            if text[i] != ",":
                fail(f"{where}: expected ',' between labels, got {text[i]!r}")
                return None
            i += 1
    return labels


def parse_exposition(path):
    """Returns {(name, frozenset(labels.items())): value} or None."""
    samples = {}
    type_lines = set()
    with open(path, "r", encoding="utf-8") as f:
        for lineno, line in enumerate(f.read().split("\n"), 1):
            where = f"{path}:{lineno}"
            if line == "":
                continue  # trailing newline / blank separator
            if line.startswith("#"):
                m = re.match(r"# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) ", line)
                if m:
                    if m.group(1) in type_lines:
                        fail(f"{where}: duplicate TYPE for {m.group(1)}")
                    type_lines.add(m.group(1))
                continue
            m = NAME_RE.match(line)
            if not m:
                fail(f"{where}: no metric name: {line!r}")
                continue
            name = m.group(0)
            rest = line[m.end():]
            labels = {}
            if rest.startswith("{"):
                end = rest.rfind("}")
                if end < 0:
                    fail(f"{where}: unterminated label set")
                    continue
                labels = parse_labels(rest[1:end], where)
                if labels is None:
                    continue
                rest = rest[end + 1:]
            if not rest.startswith(" "):
                fail(f"{where}: missing value separator")
                continue
            try:
                value = parse_value(rest[1:])
            except ValueError:
                fail(f"{where}: bad value {rest[1:]!r}")
                continue
            key = (name, frozenset(labels.items()))
            if key in samples:
                fail(f"{where}: duplicate sample {name}{labels}")
            samples[key] = value
    return samples


def histogram_names(samples):
    return {n[: -len("_bucket")] for (n, _) in samples if n.endswith("_bucket")}


def check_histograms(samples, path):
    for hist in sorted(histogram_names(samples)):
        # Group buckets by their non-le label set.
        series = {}
        for (name, labels), value in samples.items():
            if name != f"{hist}_bucket":
                continue
            ld = dict(labels)
            le = ld.pop("le", None)
            if le is None:
                fail(f"{path}: {hist}_bucket without le label")
                continue
            series.setdefault(frozenset(ld.items()), []).append((le, value))
        for key, buckets in series.items():
            where = f"{path}: {hist}{{{dict(key)}}}"
            parsed = [(parse_value(le), v) for le, v in buckets]
            parsed.sort()
            if not parsed or parsed[-1][0] != math.inf:
                fail(f"{where}: no +Inf bucket")
                continue
            prev = 0.0
            for le, v in parsed:
                if v < prev:
                    fail(f"{where}: bucket le={le} not cumulative")
                prev = v
            count = samples.get((f"{hist}_count", key))
            if count is None:
                fail(f"{where}: missing _count")
            elif count != parsed[-1][1]:
                fail(f"{where}: +Inf bucket {parsed[-1][1]} != _count {count}")
            if (f"{hist}_sum", key) not in samples:
                fail(f"{where}: missing _sum")


def scalar(samples, name):
    return samples.get((name, frozenset()))


def check_ledger(samples, path):
    ops = 0.0
    for c in ("phch_find_ops_total", "phch_insert_ops_total",
              "phch_erase_ops_total"):
        v = scalar(samples, c)
        if v is None:
            fail(f"{path}: missing {c}")
            return None
        ops += v
    depth = scalar(samples, "phch_probe_depth_count")
    if depth is None:
        fail(f"{path}: missing phch_probe_depth_count")
        return None
    if depth != ops:
        fail(f"{path}: probe-depth ledger: hist count {depth} != ops {ops}")
    return ops


def check_monotone(first, second):
    advanced = False
    for (name, labels), v1 in first.items():
        if not (name.endswith("_total") or name.endswith("_count")
                or name.endswith("_sum") or name.endswith("_bucket")):
            continue
        v2 = second.get((name, labels))
        if v2 is None:
            # A per-table series may disappear when its table dies;
            # process-global series must not.
            if "table" not in dict(labels):
                fail(f"scrape2 dropped {name}{dict(labels)}")
            continue
        if v2 < v1:
            fail(f"{name}{dict(labels)} went backwards: {v1} -> {v2}")
        if v2 > v1:
            advanced = True
    if not advanced:
        fail("no counter advanced between scrapes (workload loop stalled?)")


def main(argv):
    if len(argv) < 2 or len(argv) > 3:
        print(__doc__, file=sys.stderr)
        return 1
    first = parse_exposition(argv[1])
    check_histograms(first, argv[1])
    check_ledger(first, argv[1])
    if len(argv) == 3:
        second = parse_exposition(argv[2])
        check_histograms(second, argv[2])
        check_ledger(second, argv[2])
        check_monotone(first, second)
    if failures:
        print(f"check_prom: {len(failures)} failure(s)", file=sys.stderr)
        return 1
    print("check_prom: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
