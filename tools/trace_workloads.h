// Shared workload drivers for the telemetry tools. phch_trace (counter and
// ledger validation + one-shot export) and phch_monitor (live /metrics
// endpoint) run the same dedup / BFS / mixed workloads over the same table
// families; this header is the single definition of both, so the reference
// identities the tools check are identities of *one* workload, not of two
// near-copies that can drift apart.
//
// The drivers run the workload and return the reference quantities the
// counter checks need (output size, reached vertices, find hits...). The
// checks themselves stay in the tools: phch_trace fails the process on a
// mismatch, phch_monitor only needs the workload's side effects.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "phch/apps/bfs.h"
#include "phch/apps/remove_duplicates.h"
#include "phch/core/batch_ops.h"
#include "phch/core/chained_table.h"
#include "phch/core/cuckoo_table.h"
#include "phch/core/deterministic_table.h"
#include "phch/core/hopscotch_table.h"
#include "phch/core/nd_linear_table.h"
#include "phch/core/table_common.h"
#include "phch/core/tombstone_table.h"
#include "phch/graph/generators.h"
#include "phch/graph/graph.h"
#include "phch/obs/trace.h"
#include "phch/utils/rand.h"
#include "phch/workloads/sequences.h"

namespace phch::tools {

// Table families selectable with -table. cap_mult scales the table sizing:
// 2-choice cuckoo placement saturates at load 0.5, so it gets the paper's
// two-tables'-worth of slots and every workload stays below threshold.
//
// probe_ledger marks the linear-probing families whose every operation
// records exactly one probe-depth sample, so at a quiescent point
//   Δ table_hist_totals(probe_depth).count
//     == Δ (find_ops + insert_ops + erase_ops)
// holds exactly. The sparse families (chained, cuckoo, hopscotch) count
// their own step metrics (chain links, evictions, displacements) instead of
// linear probe depth and are excluded from that check.
struct det_family {
  static constexpr std::size_t cap_mult = 1;
  static constexpr bool probe_ledger = true;
  template <typename Tr> using table = deterministic_table<Tr>;
};
struct nd_family {
  static constexpr std::size_t cap_mult = 1;
  static constexpr bool probe_ledger = true;
  template <typename Tr> using table = nd_linear_table<Tr>;
};
struct tomb_family {
  static constexpr std::size_t cap_mult = 1;
  static constexpr bool probe_ledger = true;
  template <typename Tr> using table = tombstone_table<Tr>;
};
struct chained_family {
  static constexpr std::size_t cap_mult = 1;
  static constexpr bool probe_ledger = false;
  template <typename Tr> using table = chained_table<Tr, true>;
};
struct cuckoo_family {
  static constexpr std::size_t cap_mult = 2;
  static constexpr bool probe_ledger = false;
  template <typename Tr> using table = cuckoo_table<Tr>;
};
struct hopscotch_family {
  static constexpr std::size_t cap_mult = 1;
  static constexpr bool probe_ledger = false;
  template <typename Tr> using table = hopscotch_table<Tr, true>;
};

// Distinct nonzero keys so every op count has a closed-form reference.
inline std::vector<std::uint64_t> distinct_keys(std::size_t n) {
  std::vector<std::uint64_t> keys(n);
  for (std::size_t i = 0; i < n; ++i) keys[i] = hash64(i + 1) | 1;
  return keys;
}

// Dedup: insert a random sequence (with duplicates), take elements().
// Returns the deduplicated output size.
template <typename Family>
std::size_t dedup_workload(std::size_t n, unsigned seed = 1) {
  const auto seq = workloads::random_int_seq(n, seed);
  const auto out =
      apps::remove_duplicates<typename Family::template table<int_entry<>>>(
          seq, Family::cap_mult * round_up_pow2(2 * n));
  return out.size();
}

// BFS: hash_bfs over a random 5-regular-ish graph. Returns the number of
// reached vertices (root included).
template <typename Family>
std::uint64_t bfs_workload(std::size_t n, unsigned seed = 1) {
  const auto edges = graph::random_k_edges(n, 5, seed);
  const auto g = graph::csr_graph::from_edges(n, edges);
  const auto parents = apps::hash_bfs<
      typename Family::template table<int_entry<std::uint32_t>>>(
      g, 0, static_cast<double>(Family::cap_mult));
  std::uint64_t reached = 0;
  for (const auto p : parents) {
    if (p != apps::kNotReached) ++reached;
  }
  return reached;
}

struct mixed_result {
  std::uint64_t find_hits;  // non-empty results of the find batch
  std::uint64_t unique;     // distinct keys the insert batch committed
};

// One insert / find / erase cycle on a caller-owned table: insert all keys,
// find all keys, erase the first erase_count. With erase_count == n the
// table returns to empty, so phch_monitor can loop this on one persistent
// (registered) table indefinitely; phch_trace erases half and checks the
// remainder against approx_size(). Phases are bracketed by marks, so each
// cycle contributes one quiescent-point snapshot per boundary.
template <typename Table>
mixed_result mixed_cycle(Table& t, const std::vector<std::uint64_t>& keys,
                         std::size_t erase_count) {
  using traits = typename Table::traits;
  obs::mark("mixed/start");
  insert_batch(t, keys);
  obs::mark("mixed/inserted");
  const auto found = find_batch(t, keys);
  obs::mark("mixed/found");
  const std::vector<std::uint64_t> victims(
      keys.begin(), keys.begin() + static_cast<long>(erase_count));
  erase_batch(t, victims);
  obs::mark("mixed/erased");
  std::uint64_t hits = 0;
  for (const auto v : found) {
    if (!traits::is_empty(v)) ++hits;
  }
  // approx_size is exact here: the table is quiescent between phases.
  return {hits, t.approx_size() + erase_count};
}

template <typename Family>
mixed_result mixed_workload(std::size_t n) {
  typename Family::template table<int_entry<>> t(Family::cap_mult *
                                                 round_up_pow2(2 * n));
  return mixed_cycle(t, distinct_keys(n), n / 2);
}

}  // namespace phch::tools
