#!/usr/bin/env python3
"""Fixture tests for tools/phch_lint.py.

Runs the lint over tools/lint_fixtures/ — a known-good header that must
come back clean, and known-bad headers that must each trip their intended
check — plus unit tests of the lexer pieces the checks stand on. Written
against unittest so it runs with either of:

    python3 tools/test_phch_lint.py        # plain unittest (always there)
    pytest tools/test_phch_lint.py         # the CI runner, when installed

ctest registers the unittest form (see tools/CMakeLists.txt), so the
fixtures are part of the tier-1 `ctest` sweep, not a separate ritual.
"""

import io
import json
import os
import sys
import tempfile
import unittest
from contextlib import redirect_stdout, redirect_stderr

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import phch_lint  # noqa: E402

FIXTURES = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "lint_fixtures")
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def run_lint(paths, root=FIXTURES, contract="contract.tsv", extra=None):
    """Invoke phch_lint.main() capturing output; returns (exit, stdout)."""
    argv = list(paths) + ["--root", root, "--contract", contract]
    if extra:
        argv += extra
    out, err = io.StringIO(), io.StringIO()
    with redirect_stdout(out), redirect_stderr(err):
        code = phch_lint.main(argv)
    return code, out.getvalue() + err.getvalue()


def checks_in(output):
    return {line.split("[", 1)[1].split("]", 1)[0]
            for line in output.splitlines() if "[" in line and "]" in line}


class GoodFixture(unittest.TestCase):
    def test_good_table_is_clean(self):
        code, out = run_lint(["good_table.h"], contract="contract_good.tsv")
        self.assertEqual(code, 0, out)
        self.assertIn("clean", out)


class BadFixtures(unittest.TestCase):
    def test_missing_phase_scope_and_annotation(self):
        code, out = run_lint(["bad_missing_phase_scope.h"])
        self.assertEqual(code, 1, out)
        self.assertIn("phase-scope-missing", checks_in(out))
        self.assertIn("phase-annotation-missing", checks_in(out))

    def test_unannotated_atomic(self):
        code, out = run_lint(["bad_unannotated_atomic.h"])
        self.assertEqual(code, 1, out)
        self.assertIn("atomic-implicit-order", checks_in(out))
        # load(), store() and the += operator form: three sites.
        n = sum("atomic-implicit-order" in ln for ln in out.splitlines())
        self.assertEqual(n, 3, out)

    def test_contract_mismatch(self):
        code, out = run_lint(["bad_contract_mismatch.h"])
        self.assertEqual(code, 1, out)
        self.assertIn("atomic-contract-order", checks_in(out))
        self.assertIn("atomic-contract-missing", checks_in(out))

    def test_simd_include_outside_homes(self):
        code, out = run_lint(["bad_simd_include.h"])
        self.assertEqual(code, 1, out)
        self.assertIn("simd-include", checks_in(out))

    def test_missing_pragma_once(self):
        code, out = run_lint(["bad_no_pragma_once.h"])
        self.assertEqual(code, 1, out)
        self.assertIn("pragma-once-missing", checks_in(out))

    def test_stale_contract_row(self):
        # Linting only the good fixture leaves the bad fixtures' contract
        # rows unmatched — they must surface as contract-stale.
        code, out = run_lint(["good_table.h", "bad_contract_mismatch.h",
                              "bad_unannotated_atomic.h"])
        self.assertNotIn("contract-stale", checks_in(out))
        code, out = run_lint(["good_table.h"])
        self.assertEqual(code, 1, out)
        self.assertIn("contract-stale", checks_in(out))


class Suppressions(unittest.TestCase):
    def test_allow_directive_suppresses_and_counts(self):
        with tempfile.TemporaryDirectory() as td:
            path = os.path.join(td, "suppressed.h")
            with open(path, "w") as fh:
                fh.write("#pragma once\n#include <atomic>\n"
                         "struct s {\n"
                         "  std::atomic<int> a_{0};\n"
                         "  // phch_lint: allow(atomic-implicit-order)\n"
                         "  int g() { return a_.load(); }\n"
                         "};\n")
            with open(os.path.join(td, "contract.tsv"), "w") as fh:
                fh.write("suppressed.h\ta_\tseq_cst\tfixture\n")
            code, out = run_lint(["suppressed.h"], root=td)
            self.assertEqual(code, 0, out)
            self.assertIn("1 suppression(s)", out)
            # ... but a suppression budget of zero fails the run.
            code, out = run_lint(["suppressed.h"], root=td,
                                 extra=["--max-suppressions", "0"])
            self.assertEqual(code, 1, out)


class JsonArtifact(unittest.TestCase):
    def test_json_report_shape(self):
        with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tf:
            json_path = tf.name
        try:
            code, _ = run_lint(["bad_contract_mismatch.h"],
                               extra=["--json", json_path])
            self.assertEqual(code, 1)
            with open(json_path) as fh:
                payload = json.load(fh)
            self.assertEqual(payload["tool"], "phch_lint")
            self.assertGreaterEqual(payload["files_scanned"], 1)
            self.assertTrue(payload["findings"])
            f = payload["findings"][0]
            for key in ("check", "file", "line", "message"):
                self.assertIn(key, f)
        finally:
            os.unlink(json_path)


class EmitContract(unittest.TestCase):
    def test_census_preserves_why(self):
        code, out = run_lint(["good_table.h"], extra=["--emit-contract"])
        self.assertEqual(code, 0, out)
        self.assertIn("good_table.h\tlast_\tacquire,release\t"
                      "fixture: release-publish / acquire-read pair", out)


class LexerUnits(unittest.TestCase):
    def test_blanking_preserves_layout(self):
        src = 'int a; // comment\nchar c = \'"\'; /* x\ny */ int b;\n'
        blanked = phch_lint.blank_comments_and_strings(src)
        self.assertEqual(len(blanked), len(src))
        self.assertEqual(blanked.count("\n"), src.count("\n"))
        self.assertNotIn("comment", blanked)
        self.assertIn("int b;", blanked)

    def test_receiver_walks_member_chains(self):
        code = "R.slots[i].pending.load(x)"
        idx = code.index(".load")
        self.assertEqual(phch_lint.receiver_of(code, idx), "pending")
        code = "waiters_[static_cast<std::size_t>(room)].fetch_add(1, o)"
        idx = code.index(".fetch_add")
        self.assertEqual(phch_lint.receiver_of(code, idx), "waiters_")

    def test_repo_contract_is_well_formed(self):
        rows = phch_lint.load_contract(
            os.path.join(REPO_ROOT, "tools", "atomics_contract.tsv"))
        self.assertGreater(len(rows), 40)
        for r in rows:
            self.assertTrue(r.orders, f"{r.file}:{r.symbol} has no orders")
            self.assertNotIn("TODO", r.why,
                             f"{r.file}:{r.symbol} why is a placeholder")


class RepoTree(unittest.TestCase):
    def test_src_phch_is_clean_with_zero_suppressions(self):
        code, out = run_lint(["src/phch"], root=REPO_ROOT,
                             contract="tools/atomics_contract.tsv",
                             extra=["--max-suppressions", "0"])
        self.assertEqual(code, 0, out)


if __name__ == "__main__":
    unittest.main()
