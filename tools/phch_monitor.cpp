// phch_monitor: run a phase-concurrent workload in a loop while serving the
// metric registry as Prometheus text exposition on a loopback socket.
//
//   ./phch_monitor [-port P] [-seconds S] [-n N] [-threads T] [-out FILE]
//
//   -port P     listen on 127.0.0.1:P; 0 (default) picks an ephemeral port.
//               The actual port is printed as "serving http://..." so CI can
//               scrape without guessing.
//   -seconds S  run the workload loop for ~S seconds (default 5).
//   -n N        keys per mixed cycle (default 100000).
//   -out FILE   also write each exposition snapshot to FILE (atomic
//               rename), for environments where even a loopback socket is
//               unavailable.
//
// Exit status: 0 on success, 1 if the final probe-depth ledger check fails,
// 2 if the binary was built without -DPHCH_TELEMETRY=ON.
//
// Scrape consistency: the exposition page is not rendered per request — it
// is rebuilt once per workload iteration, at the quiescent point between
// mixed cycles, where striped counter and histogram sums are exact. A
// scrape therefore always observes a ledger-consistent snapshot
// (probe-depth histogram count == find_ops + insert_ops + erase_ops), which
// is what tools/check_prom.py asserts in CI. The server thread only copies
// the cached string under a mutex; it never touches the tables.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "phch/core/deterministic_table.h"
#include "phch/core/table_common.h"
#include "phch/obs/histogram.h"
#include "phch/obs/prom.h"
#include "phch/obs/registry.h"
#include "phch/obs/telemetry.h"
#include "phch/obs/trace.h"
#include "phch/parallel/scheduler.h"
#include "phch/utils/cmdline.h"
#include "trace_workloads.h"

using namespace phch;

namespace {

// The exposition cache: the workload loop publishes, the server thread and
// the -out writer consume.
std::mutex page_mutex;
std::string page = "# phch_monitor: no snapshot published yet\n";
std::atomic<bool> stop_serving{false};

std::string current_page() {
  std::lock_guard<std::mutex> lock(page_mutex);
  return page;
}

void publish_page() {
  std::string fresh = obs::render_prometheus();
  std::lock_guard<std::mutex> lock(page_mutex);
  page = std::move(fresh);
}

// Minimal single-threaded HTTP responder: every request, whatever its path,
// gets the current exposition page. Prometheus scrapers send "GET /metrics
// HTTP/1.1" and tolerate Connection: close, which is all we implement.
void serve(int listen_fd) {
  while (!stop_serving.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd, POLLIN, 0};
    const int r = poll(&pfd, 1, 200 /* ms, so stop_serving is noticed */);
    if (r <= 0) continue;
    const int fd = accept(listen_fd, nullptr, nullptr);
    if (fd < 0) continue;
    char req[1024];
    (void)read(fd, req, sizeof(req));  // drain the request line + headers
    const std::string body = current_page();
    char header[256];
    const int header_len = std::snprintf(
        header, sizeof(header),
        "HTTP/1.0 200 OK\r\n"
        "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
        "Content-Length: %zu\r\n"
        "Connection: close\r\n\r\n",
        body.size());
    (void)write(fd, header, static_cast<std::size_t>(header_len));
    std::size_t off = 0;
    while (off < body.size()) {
      const ssize_t w = write(fd, body.data() + off, body.size() - off);
      if (w <= 0) break;
      off += static_cast<std::size_t>(w);
    }
    close(fd);
  }
  close(listen_fd);
}

// Bind 127.0.0.1:want_port (0 = ephemeral); returns the fd and stores the
// actual port, or returns -1.
int bind_loopback(int want_port, int* actual_port) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  const int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(want_port));
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      listen(fd, 16) != 0) {
    close(fd);
    return -1;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    close(fd);
    return -1;
  }
  *actual_port = ntohs(bound.sin_port);
  return fd;
}

bool write_page_file(const std::string& path) {
  const std::string tmp = path + ".tmp";
  FILE* f = std::fopen(tmp.c_str(), "w");
  if (!f) return false;
  const std::string body = current_page();
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  return ok && std::rename(tmp.c_str(), path.c_str()) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  cmdline cl(argc, argv);
  const int want_port = static_cast<int>(cl.get_long("-port", 0));
  const double seconds = cl.get_double("-seconds", 5.0);
  const std::size_t n = static_cast<std::size_t>(cl.get_long("-n", 100000));
  const std::string out_path = cl.get_string("-out", "");

  if (!obs::compiled) {
    std::fprintf(stderr,
                 "phch_monitor: telemetry is compiled out; reconfigure with "
                 "-DPHCH_TELEMETRY=ON\n");
    return 2;
  }
  obs::set_enabled(true);

  const long threads = cl.get_long("-threads", 0);
  if (threads > 0) scheduler::get().set_num_workers(static_cast<int>(threads));

  int port = 0;
  const int listen_fd = bind_loopback(want_port, &port);
  if (listen_fd < 0 && out_path.empty()) {
    std::fprintf(stderr, "phch_monitor: cannot bind 127.0.0.1:%d and no -out "
                         "fallback given\n", want_port);
    return 1;
  }
  std::thread server;
  if (listen_fd >= 0) {
    server = std::thread(serve, listen_fd);
    std::printf("phch_monitor: serving http://127.0.0.1:%d/metrics\n", port);
  } else {
    std::fprintf(stderr, "phch_monitor: cannot bind 127.0.0.1:%d; writing %s "
                         "only\n", want_port, out_path.c_str());
  }
  std::printf("phch_monitor: n=%zu threads=%d seconds=%.1f\n", n, num_workers(),
              seconds);
  std::fflush(stdout);  // CI reads the port line through a pipe

  obs::reset();

  // One persistent registered table; every cycle inserts all n keys, finds
  // them, and erases them all, so the table returns to (near-)empty and the
  // loop can run indefinitely at a stable load factor.
  deterministic_table<int_entry<>> table(round_up_pow2(4 * n));
  const obs::scoped_registration reg("monitor", table);
  const std::vector<std::uint64_t> keys = tools::distinct_keys(n);

  const auto t0 = std::chrono::steady_clock::now();
  std::uint64_t iterations = 0;
  for (;;) {
    (void)tools::mixed_cycle(table, keys, keys.size());
    ++iterations;
    publish_page();  // quiescent point: sums are exact, scrapes are coherent
    if (!out_path.empty() && !write_page_file(out_path)) {
      std::fprintf(stderr, "phch_monitor: cannot write %s\n", out_path.c_str());
    }
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - t0;
    if (elapsed.count() >= seconds) break;
  }

  stop_serving.store(true, std::memory_order_release);
  if (server.joinable()) server.join();

  // Final self-check: the same probe-depth ledger CI asserts on scrapes.
  const obs::hist_snapshot depth =
      obs::table_hist_totals(obs::table_hist::probe_depth);
  const std::uint64_t ops = obs::total(obs::counter::find_ops) +
                            obs::total(obs::counter::insert_ops) +
                            obs::total(obs::counter::erase_ops);
  std::printf("phch_monitor: %" PRIu64 " iterations, probe-depth samples %" PRIu64
              " vs ops %" PRIu64 " (p50=%.1f p99=%.1f max=%" PRIu64 ")\n",
              iterations, depth.count, ops, depth.quantile(0.50),
              depth.quantile(0.99), depth.max);
  if (depth.count != ops) {
    std::fprintf(stderr, "phch_monitor: FAIL probe-depth ledger\n");
    return 1;
  }
  return 0;
}
