#!/usr/bin/env python3
"""phch_lint: project-specific static checks for the phase-concurrent tables.

The lint closes the gaps that -Wthread-safety and clang-tidy do not cover,
because they are *project policy*, not C++ rules:

  phase-annotation-missing  every public operation of a phase-concurrent
                            table must carry PHCH_REQUIRES_PHASE(...) (or an
                            explicit PHCH_NO_TSA opt-out), so new tables
                            cannot silently skip the static phase contract.
  phase-scope-missing       every public table operation must open a phase
                            or batch scope (Phase::scope guard, a
                            batch_*_scope window, a reclaim::op_guard pin,
                            or a delegation to an operation that does).
  atomic-implicit-order     no atomic access may rely on the implicit
                            seq_cst default: every load/store/RMW spells
                            its std::memory_order explicitly.
  atomic-contract-missing   every atomic access site must have a row in
                            tools/atomics_contract.tsv (file, symbol,
                            allowed orders, why). A new seq_cst — or any
                            new atomic — shows up as a contract diff that
                            review has to see.
  atomic-contract-order     an access uses a memory_order outside the
                            contract row's allowed set (e.g. somebody
                            silently relaxed an acquire).
  contract-stale            a contract row no longer matches any access in
                            the scanned tree (the code moved or died; the
                            contract must follow).
  simd-include              vendor intrinsic headers (<immintrin.h>,
                            <arm_neon.h>, ...) may appear only in the two
                            dedicated homes: core/simd_scan.h and
                            utils/arch.h. Everyone else goes through their
                            portable wrappers.
  telemetry-off-noop        the PHCH_TELEMETRY_ENABLED=0 branch of
                            obs/telemetry.h must contain only empty/trivial
                            inline bodies — the compiled-out build must not
                            grow real code.
  pragma-once-missing       every scanned header starts with #pragma once.

Backends: the default backend is a pure-Python lexer (no dependencies, runs
anywhere). When the libclang Python bindings are importable,
`--backend clang` sharpens the atomic census by asking the AST for
std::atomic member declarations; everything else is identical. The CI job
runs whichever backend the runner supports — findings are the same format.

Directives (in source comments):
  // phch_lint: allow(check-name)   suppress that check on this line (or,
                                    on a line of its own, the next line).
                                    Suppressions are counted and printed;
                                    --max-suppressions N (default: no
                                    limit) fails the run when exceeded —
                                    CI pins it to 0 for src/phch.
  // phch_lint: table-header        treat this file as a table header for
                                    the phase checks even without
                                    PHCH_PHASE_CAPABILITIES() (used by the
                                    lint fixtures).
  // phch_lint: not-a-table         opposite: skip the phase checks for
                                    this file (auto_phased_table mixes
                                    phases by design).

Modes:
  phch_lint.py [paths...]              lint (default paths: src/phch)
  phch_lint.py --emit-contract [...]   print a TSV census of every atomic
                                       access, merging `why` text from an
                                       existing contract — the way
                                       tools/atomics_contract.tsv is
                                       (re)drafted after intentional edits.
  phch_lint.py --json FILE             also write findings as JSON (the CI
                                       artifact).

Exit status: 0 = clean, 1 = findings (or suppression budget exceeded),
2 = usage / IO error.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
from dataclasses import dataclass, field

# --------------------------------------------------------------------------
# Finding model
# --------------------------------------------------------------------------

ALL_CHECKS = (
    "phase-annotation-missing",
    "phase-scope-missing",
    "atomic-implicit-order",
    "atomic-contract-missing",
    "atomic-contract-order",
    "contract-stale",
    "simd-include",
    "telemetry-off-noop",
    "pragma-once-missing",
)


@dataclass
class Finding:
    check: str
    file: str
    line: int
    message: str
    symbol: str = ""

    def to_json(self):
        d = {"check": self.check, "file": self.file, "line": self.line,
             "message": self.message}
        if self.symbol:
            d["symbol"] = self.symbol
        return d


@dataclass
class SourceFile:
    path: str        # repo-relative, forward slashes
    raw: str         # original text
    code: str        # comments and string/char literals blanked (same length)
    lines: list = field(default_factory=list)       # raw split
    code_lines: list = field(default_factory=list)  # code split


# --------------------------------------------------------------------------
# Lexing helpers
# --------------------------------------------------------------------------

def blank_comments_and_strings(text: str) -> str:
    """Replace comments and string/char literal *contents* with spaces,
    preserving length and newlines so byte offsets and line numbers hold."""
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            for k in range(i, j):
                out[k] = " "
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j < 0 else j
            for k in range(i, j + 2):
                if out[k] != "\n":
                    out[k] = " "
            i = j + 2
        elif c == '"' or c == "'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                if text[j] == "\\":
                    j += 1
                j += 1
            for k in range(i + 1, min(j, n)):
                if out[k] != "\n":
                    out[k] = " "
            i = j + 1
        else:
            i += 1
    return "".join(out)


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


def match_balanced(text: str, open_idx: int, open_ch: str, close_ch: str) -> int:
    """Index just past the matching close bracket, or -1."""
    depth = 0
    for i in range(open_idx, len(text)):
        c = text[i]
        if c == open_ch:
            depth += 1
        elif c == close_ch:
            depth -= 1
            if depth == 0:
                return i + 1
    return -1


def split_top_level_commas(s: str) -> list:
    parts, depth, cur = [], 0, []
    for c in s:
        if c in "(<[{":
            depth += 1
        elif c in ")>]}":
            depth -= 1
        if c == "," and depth == 0:
            parts.append("".join(cur))
            cur = []
        else:
            cur.append(c)
    if cur:
        parts.append("".join(cur))
    return parts


# --------------------------------------------------------------------------
# Suppression directives
# --------------------------------------------------------------------------

ALLOW_RE = re.compile(r"//\s*phch_lint:\s*allow\(([a-z\-]+)\)")


class Suppressions:
    def __init__(self):
        self.by_file = {}   # path -> {(line, check)}
        self.used = []      # (path, line, check)

    def scan(self, sf: SourceFile):
        allowed = set()
        for idx, line in enumerate(sf.lines, start=1):
            for m in ALLOW_RE.finditer(line):
                check = m.group(1)
                # A directive on its own line covers the next line; inline
                # covers its own.
                target = idx + 1 if line.strip().startswith("//") else idx
                allowed.add((target, check))
        self.by_file[sf.path] = allowed

    def filter(self, findings: list) -> list:
        kept = []
        for f in findings:
            if (f.line, f.check) in self.by_file.get(f.file, set()):
                self.used.append((f.file, f.line, f.check))
            else:
                kept.append(f)
        return kept


# --------------------------------------------------------------------------
# Atomic census (which names are std::atomic?)
# --------------------------------------------------------------------------

# std::atomic<...> name  |  std::atomic_bool name  |  containers of atomics
ATOMIC_DECL_RE = re.compile(
    r"\b(?:std\s*::\s*)?atomic(?:_(?:bool|int|uint|long|llong|char|schar|"
    r"uchar|short|ushort|ulong|ullong|size_t|ptrdiff_t|intptr_t|uintptr_t|"
    r"int8_t|uint8_t|int16_t|uint16_t|int32_t|uint32_t|int64_t|uint64_t))?"
    r"\s*(<)?")

IDENT_RE = re.compile(r"[A-Za-z_]\w*")

# A crude non-atomic declaration matcher, used only to mark names as
# *ambiguous* (so operator-form checks skip them — safe direction).
PLAIN_DECL_RE = re.compile(
    r"^\s*(?:static\s+|constexpr\s+|inline\s+|mutable\s+)*"
    r"(?:std\s*::\s*)?(?:uint\d+_t|int\d+_t|size_t|uint64_t|int|bool|char|"
    r"long|short|float|double|unsigned|ptrdiff_t)\b[^=;(){}]*?"
    r"\b([A-Za-z_]\w*)\s*(?:=[^=]|;|\{)")


def census_atomics(files: list) -> tuple:
    """Return (atomic_names, ambiguous_names) across the whole scan set.

    The census is global on purpose: scheduler.cpp manipulates atomics
    declared in scheduler.h, so per-file censuses would miss cross-file
    member accesses."""
    atomic_names, plain_names = set(), set()
    for sf in files:
        for m in ATOMIC_DECL_RE.finditer(sf.code):
            end = m.end()
            if m.group(1):  # templated: skip the <...> argument list
                close = match_balanced(sf.code, m.start(1), "<", ">")
                if close < 0:
                    continue
                end = close
            tail = sf.code[end:end + 160]
            im = IDENT_RE.match(tail.lstrip())
            if im:
                atomic_names.add(im.group(0))
        # Containers of atomics: vector<atomic<...>> v; / array<atomic,N> a;
        for m in re.finditer(r"\b(?:std\s*::\s*)?(?:vector|array)\s*<", sf.code):
            close = match_balanced(sf.code, m.end() - 1, "<", ">")
            if close < 0:
                continue
            if "atomic" not in sf.code[m.end():close]:
                continue
            im = IDENT_RE.match(sf.code[close:].lstrip())
            if im:
                atomic_names.add(im.group(0))
        for line in sf.code_lines:
            pm = PLAIN_DECL_RE.match(line)
            if pm:
                plain_names.add(pm.group(1))
    return atomic_names, atomic_names & plain_names


def census_atomics_clang(paths: list, include_dir: str):
    """libclang-backed census: exact std::atomic member/variable names.
    Returns a name set, or None when the bindings or library are absent."""
    try:
        from clang import cindex  # type: ignore
        index = cindex.Index.create()
    except Exception:
        return None
    names = set()
    for p in paths:
        try:
            tu = index.parse(p, args=["-std=c++20", "-x", "c++",
                                      f"-I{include_dir}"])
        except Exception:
            return None
        for cur in tu.cursor.walk_preorder():
            if cur.kind in (cindex.CursorKind.FIELD_DECL,
                            cindex.CursorKind.VAR_DECL):
                t = cur.type.get_canonical().spelling
                if "atomic<" in t or t.startswith("std::atomic"):
                    names.add(cur.spelling)
    return names


# --------------------------------------------------------------------------
# Atomic access extraction
# --------------------------------------------------------------------------

# Methods that only std::atomic (or atomic_flag) has. `clear` and
# `notify_one/all` are deliberately absent: containers and condition
# variables collide with them.
ATOMIC_METHODS = (
    "load", "store", "exchange", "compare_exchange_weak",
    "compare_exchange_strong", "fetch_add", "fetch_sub", "fetch_and",
    "fetch_or", "fetch_xor", "test_and_set", "wait",
)

METHOD_CALL_RE = re.compile(
    r"(?:\.|->)\s*(" + "|".join(ATOMIC_METHODS) + r")\s*\(")

ORDER_RE = re.compile(r"\bmemory_order(?:::|_)(\w+)")
BUILTIN_RE = re.compile(r"\b(__atomic_\w+)\s*\(")
BUILTIN_ORDER_RE = re.compile(r"\b__ATOMIC_(\w+)\b")
FENCE_RE = re.compile(r"\batomic_thread_fence\s*\(")
OP_RW_RE = re.compile(r"(\+\+|--|\+=|-=|\|=|&=|\^=)")


@dataclass
class AtomicAccess:
    file: str
    line: int
    symbol: str     # receiver member name, builtin name, or "fence"
    orders: list    # memory_order names at the site ([] = implicit)
    kind: str       # "method" | "operator" | "builtin" | "fence"


def receiver_of(code: str, call_idx: int) -> str:
    """Walk left from `.method(` over a member chain and return the terminal
    identifier: `R.slots[i].pending.load` -> pending, `waiters_[r].fetch_add`
    -> waiters_, `cur()->x.load` -> x."""
    i = call_idx - 1
    while i >= 0 and code[i].isspace():
        i -= 1
    if i >= 0 and code[i] == "]":  # strip one or more index expressions
        while i >= 0 and code[i] == "]":
            depth = 0
            while i >= 0:
                if code[i] == "]":
                    depth += 1
                elif code[i] == "[":
                    depth -= 1
                    if depth == 0:
                        i -= 1
                        break
                i -= 1
            while i >= 0 and code[i].isspace():
                i -= 1
    end = i + 1
    while i >= 0 and (code[i].isalnum() or code[i] == "_"):
        i -= 1
    return code[i + 1:end]


def extract_accesses(sf: SourceFile, atomic_names: set,
                     ambiguous: set) -> list:
    accesses = []
    code = sf.code
    for m in METHOD_CALL_RE.finditer(code):
        recv = receiver_of(code, m.start())
        if recv not in atomic_names:
            continue
        close = match_balanced(code, m.end() - 1, "(", ")")
        if close < 0:
            continue
        args = code[m.end():close - 1]
        orders = [o for o in ORDER_RE.findall(args)]
        accesses.append(AtomicAccess(sf.path, line_of(code, m.start()),
                                     recv, orders, "method"))
    for m in BUILTIN_RE.finditer(code):
        close = match_balanced(code, m.end() - 1, "(", ")")
        if close < 0:
            continue
        args = code[m.end():close - 1]
        orders = [o.lower() for o in BUILTIN_ORDER_RE.findall(args)]
        accesses.append(AtomicAccess(sf.path, line_of(code, m.start()),
                                     m.group(1), orders, "builtin"))
    for m in FENCE_RE.finditer(code):
        close = match_balanced(code, m.end() - 1, "(", ")")
        if close < 0:
            continue
        args = code[m.end():close - 1]
        orders = [o for o in ORDER_RE.findall(args)]
        accesses.append(AtomicAccess(sf.path, line_of(code, m.start()),
                                     "fence", orders, "fence"))
    # Operator forms (x++, x += k, x = v on an atomic) are implicit seq_cst.
    # Skipped for names that also exist as plain members somewhere — the
    # census cannot type the receiver, and a false "implicit order" on a
    # plain int would teach people to ignore the lint.
    for idx, cl in enumerate(sf.code_lines, start=1):
        for m in OP_RW_RE.finditer(cl):
            left = cl[:m.start()].rstrip()
            lm = re.search(r"([A-Za-z_]\w*)$", left)
            name = lm.group(1) if lm else ""
            if not name:  # prefix ++x / --x
                rm = re.match(r"\s*([A-Za-z_]\w*)", cl[m.end():])
                name = rm.group(1) if rm else ""
            if name in atomic_names and name not in ambiguous:
                accesses.append(AtomicAccess(sf.path, idx, name, [],
                                             "operator"))
    return accesses


# --------------------------------------------------------------------------
# The memory-order contract
# --------------------------------------------------------------------------

@dataclass
class ContractRow:
    file: str
    symbol: str
    orders: set
    why: str
    line: int


def load_contract(path: str) -> list:
    rows = []
    with open(path, encoding="utf-8") as fh:
        for ln, raw in enumerate(fh, start=1):
            line = raw.rstrip("\n")
            if not line.strip() or line.lstrip().startswith("#"):
                continue
            parts = line.split("\t")
            if len(parts) != 4:
                raise SystemExit(
                    f"{path}:{ln}: contract rows are "
                    f"file<TAB>symbol<TAB>orders<TAB>why (got "
                    f"{len(parts)} fields)")
            f, sym, orders, why = parts
            rows.append(ContractRow(f.strip(), sym.strip(),
                                    {o.strip() for o in orders.split(",")
                                     if o.strip()},
                                    why.strip(), ln))
    return rows


def check_contract(accesses: list, rows: list, contract_path: str) -> list:
    findings = []
    index = {}
    for r in rows:
        index.setdefault((r.file, r.symbol), r)
    matched = set()
    for a in accesses:
        row = index.get((a.file, a.symbol))
        if row is None:
            findings.append(Finding(
                "atomic-contract-missing", a.file, a.line,
                f"atomic access `{a.symbol}` ({a.kind}) has no row in "
                f"{contract_path}; add `file<TAB>{a.symbol}<TAB>orders<TAB>"
                f"why` and justify the ordering", a.symbol))
            continue
        matched.add((row.file, row.symbol))
        if not a.orders:
            # implicit order: reported by atomic-implicit-order; the
            # contract check treats it as seq_cst for the allowed-set test.
            site_orders = ["seq_cst"]
        else:
            site_orders = a.orders
        for o in site_orders:
            if o not in row.orders:
                findings.append(Finding(
                    "atomic-contract-order", a.file, a.line,
                    f"`{a.symbol}` uses memory_order_{o} but the contract "
                    f"({contract_path}:{row.line}) allows only "
                    f"{{{', '.join(sorted(row.orders))}}} — update the "
                    f"code or the contract row (with a why)", a.symbol))
    for r in rows:
        if (r.file, r.symbol) not in matched:
            findings.append(Finding(
                "contract-stale", contract_path, r.line,
                f"contract row ({r.file}, {r.symbol}) matches no atomic "
                f"access in the scanned tree; delete or fix it", r.symbol))
    return findings


def emit_contract(accesses: list, existing_rows: list) -> str:
    """Draft a contract TSV from the observed accesses, preserving the `why`
    column of rows that still match."""
    why_of = {(r.file, r.symbol): r.why for r in existing_rows}
    agg = {}
    for a in accesses:
        key = (a.file, a.symbol)
        orders = agg.setdefault(key, set())
        orders.update(a.orders if a.orders else ["seq_cst"])
    out = ["# tools/atomics_contract.tsv — the memory-order contract.",
           "# One row per (file, symbol): every atomic access to `symbol`",
           "# in `file` must use one of the allowed orders. Regenerate the",
           "# census with `tools/phch_lint.py --emit-contract`, then keep",
           "# or write the `why` column by hand — the lint fails on any",
           "# access without a row, so ordering changes are review-visible.",
           "# file\tsymbol\torders\twhy"]
    for (f, sym) in sorted(agg):
        orders = ",".join(sorted(agg[(f, sym)]))
        why = why_of.get((f, sym), "TODO: justify")
        out.append(f"{f}\t{sym}\t{orders}\t{why}")
    return "\n".join(out) + "\n"


# --------------------------------------------------------------------------
# Phase-contract checks (table headers)
# --------------------------------------------------------------------------

# Public operations every phase-concurrent table must annotate and scope.
# compact()/footprint() are maintenance surfaces excluded by policy (their
# trailing requires-clauses predate the annotation grammar).
REQUIRED_OPS = (
    "insert", "insert_from", "insert_bounded", "erase", "erase_from",
    "find", "contains", "elements", "for_each",
    "insert_batch", "find_batch", "erase_batch",
)

SCOPE_EVIDENCE_RE = re.compile(
    r"(Phase\s*::\s*scope|::\s*scope\s+\w+\s*\(|\bop_guard\b|"
    r"\bbatch_(?:insert|erase|query)_scope\s*\(|"
    r"\b(?:" + "|".join(REQUIRED_OPS) + r")\s*\(|"      # delegation to an op
    r"\b\w+_(?:impl|tagged)\s*\(|"                      # ... or its impl
    r"\bphch\s*::\s*(?:insert|find|erase)_batch\s*\()")


def is_table_header(sf: SourceFile) -> bool:
    if re.search(r"//\s*phch_lint:\s*not-a-table", sf.raw):
        return False
    if re.search(r"//\s*phch_lint:\s*table-header", sf.raw):
        return True
    return "PHCH_PHASE_CAPABILITIES()" in sf.raw


def find_method_definitions(sf: SourceFile, names: tuple):
    """Yield (name, decl_text, body_text, line) for method *definitions* of
    the given names (declarations without bodies are skipped)."""
    code = sf.code
    name_re = re.compile(r"\b(" + "|".join(names) + r")\s*\(")
    for m in name_re.finditer(code):
        # Reject call sites: a definition's name is preceded by a type (or
        # qualifier), not by `.`/`->`/`(`/`,`/binary ops/`return`.
        j = m.start() - 1
        while j >= 0 and code[j].isspace():
            j -= 1
        if j >= 0 and (code[j] in ".>(,=+-*/%!<|&?:" or code[j] == ";"):
            prev_word = re.search(r"(\w+)\s*$", code[:m.start()])
            if not (code[j] == ":" and j >= 1 and code[j - 1] != ":"):
                if not (prev_word and prev_word.group(1) in
                        ("public", "private", "protected")):
                    continue
        prev_word = re.search(r"(\w+)\s*$", code[:m.start()])
        if prev_word and prev_word.group(1) in ("return", "new", "delete",
                                                "case", "goto", "co_return"):
            continue
        close = match_balanced(code, m.end() - 1, "(", ")")
        if close < 0:
            continue
        # Scan the declaration tail (qualifiers, annotations, trailing
        # return) up to `{` (definition), `;` (declaration) or `=` (default).
        k = close
        while k < len(code):
            c = code[k]
            if c == "{":
                break
            if c in ";=":
                k = -1
                break
            if c == "(":  # annotation argument list, e.g. PHCH_EXCLUDES(..)
                k = match_balanced(code, k, "(", ")")
                if k < 0:
                    break
                continue
            k += 1
        if k is None or k < 0 or k >= len(code):
            continue
        body_end = match_balanced(code, k, "{", "}")
        if body_end < 0:
            continue
        decl = code[m.start():k]
        body = code[k:body_end]
        yield (m.group(1), decl, body, line_of(code, m.start()))


def check_phase_contract(sf: SourceFile) -> list:
    findings = []
    if not is_table_header(sf):
        return findings
    for name, decl, body, line in find_method_definitions(sf, REQUIRED_OPS):
        if "PHCH_REQUIRES_PHASE" not in decl and "PHCH_NO_TSA" not in decl:
            findings.append(Finding(
                "phase-annotation-missing", sf.path, line,
                f"public table operation `{name}` lacks "
                f"PHCH_REQUIRES_PHASE(insert|erase|query) (or an explicit "
                f"PHCH_NO_TSA opt-out)", name))
        if not SCOPE_EVIDENCE_RE.search(body) and f"{name}(" not in \
                body.replace(" ", ""):
            findings.append(Finding(
                "phase-scope-missing", sf.path, line,
                f"public table operation `{name}` opens no phase/batch "
                f"scope (expected a Phase::scope guard, a batch_*_scope "
                f"window, a reclaim::op_guard, or delegation to an "
                f"operation that has one)", name))
    return findings


# --------------------------------------------------------------------------
# SIMD include allowlist
# --------------------------------------------------------------------------

SIMD_HOMES = ("src/phch/core/simd_scan.h", "src/phch/utils/arch.h")
SIMD_INCLUDE_RE = re.compile(
    r'#\s*include\s*[<"]((?:x86|imm|emm|xmm|pmm|smm|tmm|nmm|wmm|amm)intrin'
    r'\.h|avx\w*\.h|arm_neon\.h|arm_sve\.h|altivec\.h)[>"]')


def check_simd_includes(sf: SourceFile) -> list:
    if sf.path in SIMD_HOMES:
        return []
    findings = []
    for idx, line in enumerate(sf.code_lines, start=1):
        m = SIMD_INCLUDE_RE.search(line)
        if m:
            findings.append(Finding(
                "simd-include", sf.path, idx,
                f"vendor intrinsic header <{m.group(1)}> outside its "
                f"dedicated homes ({', '.join(SIMD_HOMES)}); use the "
                f"portable wrappers instead", m.group(1)))
    return findings


# --------------------------------------------------------------------------
# Telemetry compiled-out branch
# --------------------------------------------------------------------------

TELEMETRY_HEADER = "src/phch/obs/telemetry.h"


def telemetry_off_region(sf: SourceFile):
    """Return (start_line, end_line, text) of the #else branch of the
    top-level `#if PHCH_TELEMETRY_ENABLED` block, or None."""
    lines = sf.code_lines
    depth, open_depth = 0, None
    else_start = None
    for idx, line in enumerate(lines, start=1):
        s = line.strip()
        if s.startswith("#if"):
            depth += 1
            if open_depth is None and "PHCH_TELEMETRY_ENABLED" in line:
                open_depth = depth
        elif s.startswith("#else") and depth == open_depth:
            else_start = idx
        elif s.startswith("#endif"):
            if depth == open_depth and else_start is not None:
                return (else_start + 1, idx - 1,
                        "\n".join(lines[else_start:idx - 1]))
            if depth == open_depth:
                open_depth = None
            depth -= 1
    return None


TRIVIAL_BODY_RE = re.compile(
    r"^(?:\s|\(void\)\s*[\w.]+\s*;|return\s+[^();]*;|return\s*;)*$")


def check_telemetry_noop(sf: SourceFile) -> list:
    if sf.path != TELEMETRY_HEADER:
        return []
    region = telemetry_off_region(sf)
    if region is None:
        return [Finding("telemetry-off-noop", sf.path, 1,
                        "could not locate the #else branch of "
                        "`#if PHCH_TELEMETRY_ENABLED` — the compiled-out "
                        "surface must exist and stay trivial")]
    start_line, _, text = region
    findings = []
    fn_re = re.compile(r"\b(\w+)\s*\([^;{)]*\)[^;{]*\{")
    pos = 0
    while True:
        m = fn_re.search(text, pos)
        if not m:
            break
        open_idx = m.end() - 1
        close = match_balanced(text, open_idx, "{", "}")
        if close < 0:
            break
        body = text[open_idx + 1:close - 1]
        if not TRIVIAL_BODY_RE.match(body):
            findings.append(Finding(
                "telemetry-off-noop", sf.path,
                start_line + text.count("\n", 0, m.start()),
                f"`{m.group(1)}` in the PHCH_TELEMETRY_ENABLED=0 branch has "
                f"a non-trivial body — the compiled-out build must stay "
                f"empty-inline", m.group(1)))
        pos = close
    return findings


# --------------------------------------------------------------------------
# pragma once
# --------------------------------------------------------------------------

def check_pragma_once(sf: SourceFile) -> list:
    if not sf.path.endswith(".h"):
        return []
    if re.search(r"^\s*#\s*pragma\s+once\s*$", sf.raw, re.MULTILINE):
        return []
    return [Finding("pragma-once-missing", sf.path, 1,
                    "header lacks `#pragma once`")]


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------

def gather_files(paths: list, root: str) -> list:
    out = []
    for p in paths:
        ap = p if os.path.isabs(p) else os.path.join(root, p)
        if os.path.isdir(ap):
            for dirpath, _dirnames, filenames in sorted(os.walk(ap)):
                for fn in sorted(filenames):
                    if fn.endswith((".h", ".hpp", ".cpp", ".cc")):
                        out.append(os.path.join(dirpath, fn))
        elif os.path.isfile(ap):
            out.append(ap)
        else:
            raise SystemExit(f"phch_lint: no such path: {p}")
    seen, uniq = set(), []
    for f in out:
        rp = os.path.relpath(f, root).replace(os.sep, "/")
        if rp not in seen:
            seen.add(rp)
            uniq.append((f, rp))
    return uniq


def load_sources(pairs: list) -> list:
    files = []
    for abspath, rel in pairs:
        with open(abspath, encoding="utf-8", errors="replace") as fh:
            raw = fh.read()
        code = blank_comments_and_strings(raw)
        files.append(SourceFile(rel, raw, code, raw.split("\n"),
                                code.split("\n")))
    return files


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(prog="phch_lint.py",
                                 description=__doc__.splitlines()[0])
    ap.add_argument("paths", nargs="*", default=None,
                    help="files or directories (default: src/phch)")
    ap.add_argument("--root", default=None,
                    help="repo root (default: parent of this script)")
    ap.add_argument("--contract", default="tools/atomics_contract.tsv",
                    help="memory-order contract TSV (relative to root)")
    ap.add_argument("--json", default=None, metavar="FILE",
                    help="also write findings as JSON")
    ap.add_argument("--emit-contract", action="store_true",
                    help="print a contract census TSV and exit")
    ap.add_argument("--backend", choices=("python", "clang"),
                    default="python",
                    help="atomic-census backend (clang falls back to "
                         "python when libclang is unavailable)")
    ap.add_argument("--max-suppressions", type=int, default=None,
                    metavar="N", help="fail when more than N "
                    "`phch_lint: allow(...)` directives fire (CI: 0)")
    ap.add_argument("--list-checks", action="store_true")
    args = ap.parse_args(argv)

    if args.list_checks:
        print("\n".join(ALL_CHECKS))
        return 0

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    paths = args.paths or ["src/phch"]
    pairs = gather_files(paths, root)
    files = load_sources(pairs)

    atomic_names, ambiguous = census_atomics(files)
    if args.backend == "clang":
        clang_names = census_atomics_clang([a for a, _ in pairs],
                                           os.path.join(root, "src"))
        if clang_names is not None:
            atomic_names |= clang_names
        else:
            print("phch_lint: libclang unavailable; using python census",
                  file=sys.stderr)

    accesses = []
    for sf in files:
        accesses.extend(extract_accesses(sf, atomic_names, ambiguous))

    if args.emit_contract:
        contract_path = os.path.join(root, args.contract)
        existing = load_contract(contract_path) if \
            os.path.exists(contract_path) else []
        sys.stdout.write(emit_contract(accesses, existing))
        return 0

    findings = []
    for a in accesses:
        if not a.orders:
            what = ("operator access (++/--/+=/=) compiles to seq_cst"
                    if a.kind == "operator" else
                    "call relies on the implicit seq_cst default")
            findings.append(Finding(
                "atomic-implicit-order", a.file, a.line,
                f"atomic `{a.symbol}`: {what}; spell the std::memory_order "
                f"explicitly", a.symbol))

    contract_path = os.path.join(root, args.contract)
    if os.path.exists(contract_path):
        rows = load_contract(contract_path)
        findings.extend(check_contract(accesses, rows, args.contract))
    else:
        print(f"phch_lint: warning: no contract file at {args.contract}; "
              f"skipping contract checks", file=sys.stderr)

    for sf in files:
        findings.extend(check_phase_contract(sf))
        findings.extend(check_simd_includes(sf))
        findings.extend(check_telemetry_noop(sf))
        findings.extend(check_pragma_once(sf))

    sup = Suppressions()
    for sf in files:
        sup.scan(sf)
    findings = sup.filter(findings)
    findings.sort(key=lambda f: (f.file, f.line, f.check))

    for f in findings:
        print(f"{f.file}:{f.line}: [{f.check}] {f.message}")
    n_sup = len(sup.used)
    if n_sup:
        print(f"phch_lint: {n_sup} suppression(s) in effect:")
        for path, line, check in sup.used:
            print(f"  {path}:{line}: allow({check})")

    if args.json:
        payload = {
            "tool": "phch_lint",
            "root": root,
            "files_scanned": len(files),
            "atomic_accesses": len(accesses),
            "findings": [f.to_json() for f in findings],
            "suppressions": [{"file": p, "line": l, "check": c}
                             for p, l, c in sup.used],
        }
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")

    over_budget = (args.max_suppressions is not None and
                   n_sup > args.max_suppressions)
    if over_budget:
        print(f"phch_lint: suppression budget exceeded "
              f"({n_sup} > {args.max_suppressions})")
    if not findings and not over_budget:
        print(f"phch_lint: clean ({len(files)} files, "
              f"{len(accesses)} atomic accesses)")
        return 0
    return 1


if __name__ == "__main__":
    sys.exit(main())
