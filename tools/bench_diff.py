#!/usr/bin/env python3
"""Compare a fresh BENCH_*.json against a committed baseline (stdlib only).

Usage:
    bench_diff.py FRESH BASELINE [--tol PCT] [--abs-floor X] [--strict]

Walks both JSON trees in parallel and reports every numeric leaf whose
relative deviation exceeds --tol percent (default 25 — CI machines are
noisy; the point is catching order-of-magnitude regressions and shape
breaks, not 5% jitter). Leaves smaller than --abs-floor (default 1.0, in
the leaf's own unit) are skipped: sub-nanosecond timings are pure noise.
Structural differences — a key present on one side only, a type mismatch —
are always reported: they mean the bench's schema drifted and the baseline
needs regenerating.

Keys whose name suggests a machine-dependent environment fact (threads,
reps, capacity, width, backend...) are compared for presence but not value.

By default the exit status is 0 even with deviations (report-only, for a
warning CI step); --strict exits 1 on any finding.
"""
import argparse
import json
import sys

# Environment facts: value differences are expected across machines/configs.
ENV_KEYS = {
    "threads", "reps", "capacity", "initial_capacity", "batch", "width",
    "increments", "n", "simd_backend", "compiled", "bench", "growths",
}

findings = []


def note(path, msg):
    findings.append(f"{path}: {msg}")


def leaf_name(path):
    return path.rsplit(".", 1)[-1].rsplit("[", 1)[0]


def walk(fresh, base, path, tol, abs_floor):
    if type(fresh) is not type(base) and not (
            isinstance(fresh, (int, float)) and isinstance(base, (int, float))):
        note(path, f"type changed: {type(base).__name__} -> "
                   f"{type(fresh).__name__}")
        return
    if isinstance(fresh, dict):
        for k in base:
            if k not in fresh:
                note(f"{path}.{k}", "missing from fresh run")
        for k in fresh:
            if k not in base:
                note(f"{path}.{k}", "not in baseline (regenerate baseline?)")
            else:
                walk(fresh[k], base[k], f"{path}.{k}", tol, abs_floor)
    elif isinstance(fresh, list):
        if len(fresh) != len(base):
            note(path, f"length changed: {len(base)} -> {len(fresh)}")
        for i, (fv, bv) in enumerate(zip(fresh, base)):
            walk(fv, bv, f"{path}[{i}]", tol, abs_floor)
    elif isinstance(fresh, bool) or isinstance(fresh, str):
        if leaf_name(path) not in ENV_KEYS and fresh != base:
            note(path, f"{base!r} -> {fresh!r}")
    elif isinstance(fresh, (int, float)):
        if leaf_name(path) in ENV_KEYS:
            return
        if max(abs(fresh), abs(base)) < abs_floor:
            return
        denom = max(abs(base), abs_floor)
        dev = 100.0 * abs(fresh - base) / denom
        if dev > tol:
            note(path, f"{base} -> {fresh} ({dev:.0f}% > {tol:.0f}% tol)")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("fresh")
    ap.add_argument("baseline")
    ap.add_argument("--tol", type=float, default=25.0,
                    help="relative tolerance, percent (default 25)")
    ap.add_argument("--abs-floor", type=float, default=1.0,
                    help="ignore leaves where both sides are below this")
    ap.add_argument("--strict", action="store_true",
                    help="exit 1 on any finding (default: report only)")
    args = ap.parse_args()

    with open(args.fresh) as f:
        fresh = json.load(f)
    with open(args.baseline) as f:
        base = json.load(f)
    walk(fresh, base, "$", args.tol, args.abs_floor)

    if findings:
        print(f"bench_diff: {len(findings)} deviation(s) vs {args.baseline} "
              f"(tol {args.tol:.0f}%):")
        for f_ in findings:
            print(f"  {f_}")
    else:
        print(f"bench_diff: within {args.tol:.0f}% of {args.baseline}")
    return 1 if (findings and args.strict) else 0


if __name__ == "__main__":
    sys.exit(main())
