// phch_trace: run an instrumented workload with telemetry enabled, check
// the counters against reference operation counts, and export the metrics
// snapshot + chrome://tracing file.
//
//   ./phch_trace -workload dedup|bfs|mixed -n N [-threads P]
//                [-metrics metrics.json] [-trace trace.json]
//
// Exit status: 0 on success, 1 if any counter identity or reference count
// check fails, 2 if the binary was built without -DPHCH_TELEMETRY=ON.
//
// The checks are the telemetry layer's end-to-end contract: counter sums
// taken at a quiescent point are *exact*, so
//   dedup:  insert_ops == n, insert_commits == |output|,
//           insert_dups == n - |output|
//   bfs:    insert_commits == reached vertices - 1 (each non-root vertex
//           committed by exactly one WRITEMIN winner)
//   mixed:  find_ops/find_hits == lookups issued, erase_hits == n/2
// and in every workload insert_ops == commits + dups + aborts.
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "phch/apps/bfs.h"
#include "phch/apps/remove_duplicates.h"
#include "phch/core/batch_ops.h"
#include "phch/core/deterministic_table.h"
#include "phch/core/table_common.h"
#include "phch/graph/generators.h"
#include "phch/graph/graph.h"
#include "phch/obs/export.h"
#include "phch/obs/telemetry.h"
#include "phch/obs/trace.h"
#include "phch/parallel/scheduler.h"
#include "phch/utils/cmdline.h"
#include "phch/utils/rand.h"
#include "phch/workloads/sequences.h"

using namespace phch;

namespace {

int failures = 0;

void expect_eq(const char* what, std::uint64_t got, std::uint64_t want) {
  if (got != want) {
    std::fprintf(stderr, "phch_trace: FAIL %s: got %" PRIu64 ", want %" PRIu64 "\n",
                 what, got, want);
    ++failures;
  } else {
    std::printf("  ok  %-32s %" PRIu64 "\n", what, got);
  }
}

void check_insert_identity(const obs::metrics_snapshot& d) {
  expect_eq("insert_ops == commits+dups+aborts", d[obs::counter::insert_ops],
            d[obs::counter::insert_commits] + d[obs::counter::insert_dups] +
                d[obs::counter::insert_aborts]);
}

obs::metrics_snapshot run_dedup(std::size_t n) {
  const auto seq = workloads::random_int_seq(n, 1);
  const obs::metrics_snapshot before = obs::snapshot();
  const auto out = apps::remove_duplicates<deterministic_table<int_entry<>>>(
      seq, round_up_pow2(2 * n));
  const obs::metrics_snapshot d = obs::snapshot() - before;
  expect_eq("dedup insert_ops", d[obs::counter::insert_ops], n);
  expect_eq("dedup insert_commits", d[obs::counter::insert_commits], out.size());
  expect_eq("dedup insert_dups", d[obs::counter::insert_dups], n - out.size());
  expect_eq("dedup erase_ops", d[obs::counter::erase_ops], 0);
  expect_eq("dedup find_ops", d[obs::counter::find_ops], 0);
  check_insert_identity(d);
  return d;
}

obs::metrics_snapshot run_bfs(std::size_t n) {
  const auto edges = graph::random_k_edges(n, 5, 1);
  const auto g = graph::csr_graph::from_edges(n, edges);
  const obs::metrics_snapshot before = obs::snapshot();
  const auto parents =
      apps::hash_bfs<deterministic_table<int_entry<std::uint32_t>>>(g, 0);
  const obs::metrics_snapshot d = obs::snapshot() - before;
  std::uint64_t reached = 0;
  for (const auto p : parents) {
    if (p != apps::kNotReached) ++reached;
  }
  // Every reached vertex except the root is inserted by exactly one winner
  // and commits exactly once (duplicate edges surface as insert_dups).
  expect_eq("bfs insert_commits", d[obs::counter::insert_commits], reached - 1);
  expect_eq("bfs erase_ops", d[obs::counter::erase_ops], 0);
  check_insert_identity(d);
  return d;
}

obs::metrics_snapshot run_mixed(std::size_t n) {
  // Distinct nonzero keys so every op count has a closed-form reference.
  std::vector<std::uint64_t> keys(n);
  for (std::size_t i = 0; i < n; ++i) keys[i] = hash64(i + 1) | 1;
  std::vector<std::uint64_t> half(keys.begin(),
                                  keys.begin() + static_cast<long>(n / 2));
  deterministic_table<int_entry<>> t(round_up_pow2(2 * n));

  const obs::metrics_snapshot before = obs::snapshot();
  obs::mark("mixed/start");
  insert_batch(t, keys);
  obs::mark("mixed/inserted");
  const auto found = find_batch(t, keys);
  obs::mark("mixed/found");
  erase_batch(t, half);
  obs::mark("mixed/erased");
  const obs::metrics_snapshot d = obs::snapshot() - before;

  std::uint64_t hits = 0;
  for (const auto v : found) {
    if (!int_entry<>::is_empty(v)) ++hits;
  }
  // approx_size is exact here: the table is quiescent between phases.
  const std::uint64_t unique = t.approx_size() + n / 2;
  expect_eq("mixed insert_ops", d[obs::counter::insert_ops], n);
  expect_eq("mixed insert_commits", d[obs::counter::insert_commits], unique);
  expect_eq("mixed find_ops", d[obs::counter::find_ops], n);
  expect_eq("mixed find_hits", d[obs::counter::find_hits], hits);
  expect_eq("mixed erase_ops", d[obs::counter::erase_ops], n / 2);
  expect_eq("mixed erase_hits", d[obs::counter::erase_hits], n / 2);
  check_insert_identity(d);
  return d;
}

}  // namespace

int main(int argc, char** argv) {
  cmdline cl(argc, argv);
  const std::string workload = cl.get_string("-workload", "dedup");
  const std::size_t n = static_cast<std::size_t>(cl.get_long("-n", 1000000));
  const std::string metrics_path = cl.get_string("-metrics", "phch_metrics.json");
  const std::string trace_path = cl.get_string("-trace", "phch_trace.json");

  if (!obs::compiled) {
    std::fprintf(stderr,
                 "phch_trace: telemetry is compiled out; reconfigure with "
                 "-DPHCH_TELEMETRY=ON\n");
    return 2;
  }
  obs::set_enabled(true);

  const long threads = cl.get_long("-threads", 0);
  if (threads > 0) scheduler::get().set_num_workers(static_cast<int>(threads));

  std::printf("phch_trace: workload=%s n=%zu threads=%d\n", workload.c_str(), n,
              num_workers());
  obs::reset();

  if (workload == "dedup") {
    run_dedup(n);
  } else if (workload == "bfs") {
    run_bfs(n);
  } else if (workload == "mixed") {
    run_mixed(n);
  } else {
    std::fprintf(stderr, "phch_trace: unknown workload '%s'\n", workload.c_str());
    return 1;
  }
  if (num_workers() == 1) {
    expect_eq("cas_failures at p=1", obs::total(obs::counter::cas_failures), 0);
  }

  if (!obs::write_metrics_json(metrics_path.c_str())) {
    std::fprintf(stderr, "phch_trace: cannot write %s\n", metrics_path.c_str());
    return 1;
  }
  if (!obs::write_chrome_trace(trace_path.c_str())) {
    std::fprintf(stderr, "phch_trace: cannot write %s\n", trace_path.c_str());
    return 1;
  }
  std::printf("phch_trace: wrote %s and %s (%s)\n", metrics_path.c_str(),
              trace_path.c_str(), failures == 0 ? "all checks passed" : "CHECKS FAILED");
  return failures == 0 ? 0 : 1;
}
