// phch_trace: run an instrumented workload with telemetry enabled, check
// the counters against reference operation counts, and export the metrics
// snapshot + chrome://tracing file.
//
//   ./phch_trace -workload dedup|bfs|mixed -n N [-threads P]
//                [-table det|nd|tomb|chained|cuckoo|hopscotch|auto]
//                [-metrics metrics.json] [-trace trace.json]
//
// Exit status: 0 on success, 1 if any counter identity or reference count
// check fails, 2 if the binary was built without -DPHCH_TELEMETRY=ON.
//
// `-table auto` is special: it runs its own mixed workload (phased stages
// plus an uncoordinated mixed stream) on an auto_phased_table and validates
// the exactly-once transition ledger — the wrapped table's phase epoch must
// equal the phase_transitions counter, and every traced phase boundary must
// carry a distinct epoch. It ignores -workload.
//
// The checks are the telemetry layer's end-to-end contract: counter sums
// taken at a quiescent point are *exact*, so
//   dedup:  insert_ops == n, insert_commits == |output|,
//           insert_dups == n - |output|
//   bfs:    insert_commits == reached vertices - 1 (each non-root vertex
//           committed by exactly one WRITEMIN winner)
//   mixed:  find_ops/find_hits == lookups issued, erase_hits == n/2
// and in every workload insert_ops == commits + dups + aborts. For the
// linear-probing families the probe-depth *histogram* obeys the same
// discipline — every operation records exactly one sample — so the ledger
//   Δ hist(probe_depth).count == Δ (find_ops + insert_ops + erase_ops)
// is checked against the counters after every workload.
//
// -table swaps the backend: the same identities must hold for every table
// in the unified stack, so each reference check is written once against the
// concepts layer and instantiated per family. The workload drivers
// themselves are shared with phch_monitor (tools/trace_workloads.h).
#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "phch/core/auto_phased_table.h"
#include "phch/core/deterministic_table.h"
#include "phch/core/table_common.h"
#include "phch/obs/export.h"
#include "phch/obs/histogram.h"
#include "phch/obs/telemetry.h"
#include "phch/obs/trace.h"
#include "phch/parallel/scheduler.h"
#include "phch/utils/cmdline.h"
#include "phch/utils/rand.h"
#include "trace_workloads.h"

using namespace phch;

namespace {

int failures = 0;

void expect_eq(const char* what, std::uint64_t got, std::uint64_t want) {
  if (got != want) {
    std::fprintf(stderr, "phch_trace: FAIL %s: got %" PRIu64 ", want %" PRIu64 "\n",
                 what, got, want);
    ++failures;
  } else {
    std::printf("  ok  %-32s %" PRIu64 "\n", what, got);
  }
}

void check_insert_identity(const obs::metrics_snapshot& d) {
  expect_eq("insert_ops == commits+dups+aborts", d[obs::counter::insert_ops],
            d[obs::counter::insert_commits] + d[obs::counter::insert_dups] +
                d[obs::counter::insert_aborts]);
}

// The probe-depth ledger: over the checked window, the linear-probing
// families record exactly one histogram sample per operation (scalar,
// tagged, and software-pipelined paths alike, including dropped
// bounded-wrap erases), so the histogram's population must equal the op
// counters exactly. `before` is the totals snapshot taken when the window
// opened.
void check_probe_ledger(const obs::hist_snapshot& before,
                        const obs::metrics_snapshot& d) {
  const obs::hist_snapshot now =
      obs::table_hist_totals(obs::table_hist::probe_depth);
  expect_eq("probe-depth ledger: hist == ops", now.count - before.count,
            d[obs::counter::find_ops] + d[obs::counter::insert_ops] +
                d[obs::counter::erase_ops]);
}

template <typename Family>
obs::metrics_snapshot run_dedup(std::size_t n) {
  const obs::metrics_snapshot before = obs::snapshot();
  const std::size_t out_size = tools::dedup_workload<Family>(n);
  const obs::metrics_snapshot d = obs::snapshot() - before;
  expect_eq("dedup insert_ops", d[obs::counter::insert_ops], n);
  expect_eq("dedup insert_commits", d[obs::counter::insert_commits], out_size);
  expect_eq("dedup insert_dups", d[obs::counter::insert_dups], n - out_size);
  expect_eq("dedup erase_ops", d[obs::counter::erase_ops], 0);
  expect_eq("dedup find_ops", d[obs::counter::find_ops], 0);
  check_insert_identity(d);
  return d;
}

template <typename Family>
obs::metrics_snapshot run_bfs(std::size_t n) {
  const obs::metrics_snapshot before = obs::snapshot();
  const std::uint64_t reached = tools::bfs_workload<Family>(n);
  const obs::metrics_snapshot d = obs::snapshot() - before;
  // Every reached vertex except the root is inserted by exactly one winner
  // and commits exactly once (duplicate edges surface as insert_dups).
  expect_eq("bfs insert_commits", d[obs::counter::insert_commits], reached - 1);
  expect_eq("bfs erase_ops", d[obs::counter::erase_ops], 0);
  check_insert_identity(d);
  return d;
}

template <typename Family>
obs::metrics_snapshot run_mixed(std::size_t n) {
  const obs::metrics_snapshot before = obs::snapshot();
  const tools::mixed_result r = tools::mixed_workload<Family>(n);
  const obs::metrics_snapshot d = obs::snapshot() - before;
  expect_eq("mixed insert_ops", d[obs::counter::insert_ops], n);
  expect_eq("mixed insert_commits", d[obs::counter::insert_commits], r.unique);
  expect_eq("mixed find_ops", d[obs::counter::find_ops], n);
  expect_eq("mixed find_hits", d[obs::counter::find_hits], r.find_hits);
  expect_eq("mixed erase_ops", d[obs::counter::erase_ops], n / 2);
  expect_eq("mixed erase_hits", d[obs::counter::erase_hits], n / 2);
  check_insert_identity(d);
  return d;
}

// -table auto: mixed workload on the self-phasing wrapper, validating the
// exactly-once transition ledger. Every room transition advances the
// wrapped table's phase epoch through the same phase_runtime word that
// scalar and batch operations use, and the epoch's transition edge is what
// feeds the phase_transitions counter and the tracer — so at a quiescent
// point the three must agree exactly: epoch == counter, and each traced
// phase_begin event carries a distinct epoch (a boundary published twice
// would show up as a duplicate; one missed would break the counter match).
obs::metrics_snapshot run_auto(std::size_t n) {
  auto_phased_table<deterministic_table<int_entry<>>> t(round_up_pow2(4 * n));
  const std::vector<std::uint64_t> keys = tools::distinct_keys(n);

  const obs::hist_snapshot hist_before =
      obs::table_hist_totals(obs::table_hist::probe_depth);
  const obs::metrics_snapshot before = obs::snapshot();
  obs::mark("auto/phased");
  // Structured stages: three clean class boundaries with a known outcome.
  parallel_for(0, n, [&](std::size_t i) { t.insert(keys[i]); });
  std::atomic<std::uint64_t> hits{0};
  parallel_for(0, n, [&](std::size_t i) {
    if (t.contains(keys[i])) hits.fetch_add(1, std::memory_order_relaxed);
  });
  parallel_for(0, n / 2, [&](std::size_t i) { t.erase(keys[i]); });
  obs::mark("auto/mixed");
  // Uncoordinated mixed stream: all workers issue inserts, finds and erases
  // with no phasing of their own; the rooms serialize the classes and the
  // ledger must count every induced boundary exactly once.
  parallel_for(0, n, [&](std::size_t i) {
    const std::uint64_t k = keys[hash64(i) % n];
    switch (hash64(i ^ 0x9e3779b97f4a7c15ULL) & 3) {
      case 0: t.insert(k); break;
      case 1: t.erase(k); break;
      default: (void)t.contains(k); break;
    }
  });
  obs::mark("auto/done");
  const obs::metrics_snapshot d = obs::snapshot() - before;

  expect_eq("auto find_hits after insert", hits.load(), n);
  check_insert_identity(d);
  check_probe_ledger(hist_before, d);  // the wrapped table is linear-probing

  const std::uint64_t epoch = t.underlying().phase_rt().epoch();
  expect_eq("auto ledger: phase_transitions == epoch",
            d[obs::counter::phase_transitions], epoch);
  if (epoch < 4) {
    std::fprintf(stderr,
                 "phch_trace: FAIL auto ledger: epoch %" PRIu64
                 " < 4 structured boundaries\n",
                 epoch);
    ++failures;
  }

  const auto tr = obs::drain_trace();
  std::uint64_t phase_events = 0;
  std::set<std::uint64_t> epochs;
  for (const auto& e : tr.events) {
    if (e.kind != obs::event_kind::phase_begin) continue;
    ++phase_events;
    if (!epochs.insert(e.dur_ns).second) {
      std::fprintf(stderr,
                   "phch_trace: FAIL auto ledger: boundary epoch %" PRIu64
                   " traced twice\n",
                   e.dur_ns);
      ++failures;
    }
  }
  std::printf("  ok  %-32s %" PRIu64 " (all epochs distinct)\n",
              "auto traced boundaries", phase_events);
  std::printf("  ok  %-32s %" PRIu64 "\n", "auto room_waits",
              d[obs::counter::room_waits]);
  return d;
}

// Returns false on an unknown workload name.
template <typename Family>
bool run_workload(const std::string& workload, std::size_t n) {
  const obs::hist_snapshot hist_before =
      obs::table_hist_totals(obs::table_hist::probe_depth);
  obs::metrics_snapshot d;
  if (workload == "dedup") {
    d = run_dedup<Family>(n);
  } else if (workload == "bfs") {
    d = run_bfs<Family>(n);
  } else if (workload == "mixed") {
    d = run_mixed<Family>(n);
  } else {
    return false;
  }
  if constexpr (Family::probe_ledger) check_probe_ledger(hist_before, d);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  cmdline cl(argc, argv);
  const std::string workload = cl.get_string("-workload", "dedup");
  const std::string table = cl.get_string("-table", "det");
  const std::size_t n = static_cast<std::size_t>(cl.get_long("-n", 1000000));
  const std::string metrics_path = cl.get_string("-metrics", "phch_metrics.json");
  const std::string trace_path = cl.get_string("-trace", "phch_trace.json");

  if (!obs::compiled) {
    std::fprintf(stderr,
                 "phch_trace: telemetry is compiled out; reconfigure with "
                 "-DPHCH_TELEMETRY=ON\n");
    return 2;
  }
  obs::set_enabled(true);

  const long threads = cl.get_long("-threads", 0);
  if (threads > 0) scheduler::get().set_num_workers(static_cast<int>(threads));

  std::printf("phch_trace: workload=%s table=%s n=%zu threads=%d\n",
              workload.c_str(), table.c_str(), n, num_workers());
  obs::reset();

  bool known_workload;
  if (table == "auto") {
    run_auto(n);  // self-contained mixed workload; -workload is ignored
    known_workload = true;
  } else if (table == "det") {
    known_workload = run_workload<tools::det_family>(workload, n);
  } else if (table == "nd") {
    known_workload = run_workload<tools::nd_family>(workload, n);
  } else if (table == "tomb") {
    known_workload = run_workload<tools::tomb_family>(workload, n);
  } else if (table == "chained") {
    known_workload = run_workload<tools::chained_family>(workload, n);
  } else if (table == "cuckoo") {
    known_workload = run_workload<tools::cuckoo_family>(workload, n);
  } else if (table == "hopscotch") {
    known_workload = run_workload<tools::hopscotch_family>(workload, n);
  } else {
    std::fprintf(stderr,
                 "phch_trace: unknown table '%s' (want det|nd|tomb|chained|"
                 "cuckoo|hopscotch|auto)\n",
                 table.c_str());
    return 1;
  }
  if (!known_workload) {
    std::fprintf(stderr, "phch_trace: unknown workload '%s'\n", workload.c_str());
    return 1;
  }
  if (num_workers() == 1) {
    expect_eq("cas_failures at p=1", obs::total(obs::counter::cas_failures), 0);
  }

  if (!obs::write_metrics_json(metrics_path.c_str())) {
    std::fprintf(stderr, "phch_trace: cannot write %s\n", metrics_path.c_str());
    return 1;
  }
  if (!obs::write_chrome_trace(trace_path.c_str())) {
    std::fprintf(stderr, "phch_trace: cannot write %s\n", trace_path.c_str());
    return 1;
  }
  std::printf("phch_trace: wrote %s and %s (%s)\n", metrics_path.c_str(),
              trace_path.c_str(), failures == 0 ? "all checks passed" : "CHECKS FAILED");
  return failures == 0 ? 0 : 1;
}
