#!/usr/bin/env bash
# Header self-containment check: every public header under src/phch must
# compile standalone (its own includes are sufficient — no reliance on what
# a particular .cpp happened to include first). Run from the repo root:
#
#   tools/check_headers.sh [compiler]
#
# Every header (including src/phch/obs/) is compiled four times: with and
# without -DPHCH_TELEMETRY=1, each with and without -DPHCH_FORCE_SWAR=1, so
# both sides of the telemetry gate and both SIMD configurations (vector
# backends compiled in / SWAR only) stay self-contained.
#
# Each header must also carry a `#pragma once` include guard — a missing
# guard compiles fine standalone and only explodes at a distance.
#
# When clang++ is on PATH (and is not already the chosen compiler), every
# configuration is additionally compiled under clang++ with -Wthread-safety
# -Werror, so the phase-capability annotations (utils/phase_caps.h) are
# *parsed and analyzed*, not just preprocessed away as they are under g++.
# Runners without clang++ skip that pass with a notice — the CI
# static-analysis job always has it.
#
# Exits nonzero listing every header/configuration that fails.
set -u

cxx="${1:-${CXX:-g++}}"
root="$(cd "$(dirname "$0")/.." && pwd)"
failures=0
checked=0

clangxx=""
if command -v clang++ >/dev/null 2>&1; then
  case "$cxx" in
    clang++*) ;;  # already the primary compiler; no second pass needed
    *) clangxx="clang++" ;;
  esac
fi
if [ -z "$clangxx" ] && ! command -v clang++ >/dev/null 2>&1; then
  echo "note: clang++ not found; skipping the -Wthread-safety pass"
fi

while IFS= read -r header; do
  if ! grep -q '^[[:space:]]*#[[:space:]]*pragma[[:space:]]\+once' "$header"; then
    echo "MISSING #pragma once: ${header#"$root"/}"
    failures=$((failures + 1))
  fi
  for tele in "" "-DPHCH_TELEMETRY=1"; do
    for simd in "" "-DPHCH_FORCE_SWAR=1"; do
      extra="$tele $simd"
      checked=$((checked + 1))
      # shellcheck disable=SC2086  # $extra is intentionally word-split
      if ! "$cxx" -std=c++20 -fsyntax-only -I"$root/src" $extra -x c++ "$header" \
          2>/tmp/hdr_err.$$; then
        echo "NOT SELF-CONTAINED (${extra# }): ${header#"$root"/}"
        sed 's/^/    /' </tmp/hdr_err.$$ | head -15
        failures=$((failures + 1))
      fi
      if [ -n "$clangxx" ]; then
        checked=$((checked + 1))
        # shellcheck disable=SC2086
        if ! "$clangxx" -std=c++20 -fsyntax-only -Wthread-safety -Werror \
            -I"$root/src" $extra -x c++ "$header" 2>/tmp/hdr_err.$$; then
          echo "CLANG THREAD-SAFETY (${extra# }): ${header#"$root"/}"
          sed 's/^/    /' </tmp/hdr_err.$$ | head -15
          failures=$((failures + 1))
        fi
      fi
    done
  done
done < <(find "$root/src/phch" -name '*.h' | sort)

rm -f /tmp/hdr_err.$$
if [ "$checked" -eq 0 ]; then
  # An empty header list means the tree layout changed (or the script moved);
  # "0 checked, 0 failures" must not pass as green.
  echo "error: no headers found under $root/src/phch" >&2
  exit 1
fi
echo "checked $checked header compilations, $failures failure(s)"
[ "$failures" -eq 0 ]
