#!/usr/bin/env bash
# Header self-containment check: every public header under src/phch must
# compile standalone (its own includes are sufficient — no reliance on what
# a particular .cpp happened to include first). Run from the repo root:
#
#   tools/check_headers.sh [compiler]
#
# Exits nonzero listing every header that fails.
set -u

cxx="${1:-${CXX:-g++}}"
root="$(cd "$(dirname "$0")/.." && pwd)"
failures=0
checked=0

while IFS= read -r header; do
  checked=$((checked + 1))
  if ! "$cxx" -std=c++20 -fsyntax-only -I"$root/src" -x c++ "$header" 2>/tmp/hdr_err.$$; then
    echo "NOT SELF-CONTAINED: ${header#"$root"/}"
    sed 's/^/    /' </tmp/hdr_err.$$ | head -15
    failures=$((failures + 1))
  fi
done < <(find "$root/src/phch" -name '*.h' | sort)

rm -f /tmp/hdr_err.$$
echo "checked $checked headers, $failures failure(s)"
[ "$failures" -eq 0 ]
